// Package iocheck forbids dropping the error from durability-relevant IO
// in the packages that persist results: internal/campaign (checkpoints,
// bundles, provenance manifests), the internal/obs exporters, and every
// cmd/* driver. A checkpoint whose Close or Rename error vanishes is
// silent bundle corruption — the digest says the unit completed, the
// bytes on disk disagree.
//
// Flagged when their final error result is discarded (expression
// statement, blank assignment, or defer):
//
//   - package os file-mutation calls: Create, OpenFile, WriteFile,
//     Rename, Remove, RemoveAll, Mkdir, MkdirAll, Chmod, Link, Symlink,
//     Truncate — plus io.Copy;
//   - Close / Sync / Write / WriteString / ReadFrom methods on *os.File,
//     and Flush / Write / WriteString on *bufio.Writer;
//   - module-declared writers and checkpoint/digest operations: any
//     dcpsim function or method named write*/save*/export*/flush*/
//     checkpoint*/digest* (case-insensitive prefix) whose last result is
//     an error.
//
// Calls whose only sink is an in-memory buffer (*strings.Builder,
// *bytes.Buffer argument) are exempt — those writes cannot fail. A
// read-side close that genuinely cannot matter carries a
// //lint:allow iocheck <reason>.
package iocheck

import (
	"go/ast"
	"go/types"
	"strings"

	"dcpsim/internal/lint"
)

// Analyzer is the iocheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "iocheck",
	Doc:  "in campaign/obs/cmd packages, errors from file create/write/close/rename and checkpoint-digest operations must be consumed",
	Run:  run,
}

// scopePrefixes are the durability-critical package path prefixes.
var scopePrefixes = []string{
	"dcpsim/internal/campaign",
	"dcpsim/internal/obs",
	"dcpsim/cmd/",
}

func inScope(path string) bool {
	for _, p := range scopePrefixes {
		if path == strings.TrimSuffix(p, "/") || strings.HasPrefix(path, p) || strings.HasPrefix(path, strings.TrimSuffix(p, "/")+"/") {
			return true
		}
	}
	return false
}

// osFuncs are package-level os file mutations.
var osFuncs = map[string]bool{
	"Create": true, "OpenFile": true, "WriteFile": true, "Rename": true,
	"Remove": true, "RemoveAll": true, "Mkdir": true, "MkdirAll": true,
	"Chmod": true, "Link": true, "Symlink": true, "Truncate": true,
}

// fileMethods / bufioMethods are receiver methods whose errors carry
// durability information.
var fileMethods = map[string]bool{
	"Close": true, "Sync": true, "Write": true, "WriteString": true, "ReadFrom": true,
}
var bufioMethods = map[string]bool{"Flush": true, "Write": true, "WriteString": true}

// modulePrefixes match module-declared IO operations by name.
var modulePrefixes = []string{"write", "save", "export", "flush", "checkpoint", "digest"}

func run(pass *lint.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(pass, call, "discarded")
				}
				return false // the call's own arguments can't drop errors
			case *ast.DeferStmt:
				check(pass, n.Call, "deferred and discarded")
				return false
			case *ast.AssignStmt:
				checkBlank(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBlank flags `_ = write(...)` / `x, _ := os.Create(...)` forms where
// the blank swallows the call's final error.
func checkBlank(pass *lint.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	last, ok := as.Lhs[len(as.Lhs)-1].(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	check(pass, call, "assigned to _")
}

// check reports the call if it is a flagged IO operation whose last
// result is an error the caller is dropping.
func check(pass *lint.Pass, call *ast.CallExpr, how string) {
	name, kind := flagged(pass, call)
	if name == "" {
		return
	}
	if buffersOnly(pass, call) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s %s is %s; a dropped %s error is silent data loss — consume or handle it",
		kind, name, how, name)
}

// flagged classifies the callee; empty name means not an IO operation.
func flagged(pass *lint.Pass, call *ast.CallExpr) (name, kind string) {
	var fn *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ = pass.Info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = pass.Info.Uses[fun.Sel].(*types.Func)
	}
	if fn == nil || !lastResultIsError(fn) {
		return "", ""
	}
	sig := fn.Type().(*types.Signature)
	if fn.Pkg() != nil && sig.Recv() == nil {
		switch fn.Pkg().Path() {
		case "os":
			if osFuncs[fn.Name()] {
				return "os." + fn.Name(), "file operation"
			}
		case "io":
			if fn.Name() == "Copy" {
				return "io.Copy", "file operation"
			}
		}
	}
	if recv := sig.Recv(); recv != nil {
		rt := recv.Type()
		if lint.IsPtrToNamed(rt, "os", "File") && fileMethods[fn.Name()] {
			return "(*os.File)." + fn.Name(), "file method"
		}
		if lint.IsPtrToNamed(rt, "bufio", "Writer") && bufioMethods[fn.Name()] {
			return "(*bufio.Writer)." + fn.Name(), "buffered-writer method"
		}
	}
	if fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "dcpsim") {
		lower := strings.ToLower(fn.Name())
		for _, p := range modulePrefixes {
			if strings.HasPrefix(lower, p) {
				return fn.Name(), "IO operation"
			}
		}
	}
	return "", ""
}

// lastResultIsError reports whether the function's final result is error.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// buffersOnly reports whether every writer-shaped argument is an
// in-memory buffer, making the error statically impossible.
func buffersOnly(pass *lint.Pass, call *ast.CallExpr) bool {
	found := false
	for _, a := range call.Args {
		t := pass.Info.Types[a].Type
		if t == nil {
			continue
		}
		if lint.IsPtrToNamed(t, "strings", "Builder") || lint.IsPtrToNamed(t, "bytes", "Buffer") {
			found = true
			continue
		}
		if isWriterShaped(t) {
			return false // a fallible sink is in play
		}
	}
	return found
}

// isWriterShaped reports whether t implements io.Writer (heuristically:
// has a Write method).
func isWriterShaped(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		if ms.At(i).Obj().Name() == "Write" {
			return true
		}
	}
	return false
}
