// Package iofix is an iocheck fixture: in the durability-critical
// packages, errors from file create/write/close/rename and
// checkpoint/digest operations must be consumed. Handled and
// buffer-only patterns must stay silent.
package iofix

import (
	"bufio"
	"io"
	"os"
	"strings"
)

func droppedWrites(dir string) {
	os.WriteFile(dir+"/state.json", []byte("{}"), 0o644) // want `os\.WriteFile`
	os.Rename(dir+"/state.json.tmp", dir+"/state.json")  // want `os\.Rename`
}

func blankCreate(path string) *os.File {
	f, _ := os.Create(path) // want `os\.Create`
	return f
}

func deferredClose(f *os.File) {
	defer f.Close() // want `\(\*os\.File\)\.Close`
}

func droppedFileWrite(f *os.File) {
	f.WriteString("row") // want `\(\*os\.File\)\.WriteString`
}

func droppedFlush(w *bufio.Writer) {
	w.Flush() // want `\(\*bufio\.Writer\)\.Flush`
}

// saveCheckpoint and digestOf are module IO operations by naming
// convention: last result is an error.
func saveCheckpoint(path string) error { return os.WriteFile(path, nil, 0o644) }

func digestOf(path string) (string, error) {
	raw, err := os.ReadFile(path)
	return string(raw), err
}

func droppedModuleOps(path string) {
	_ = saveCheckpoint(path) // want `saveCheckpoint`
	s, _ := digestOf(path)   // want `digestOf`
	_ = s
}

// writeRow is a module writer taking any sink.
func writeRow(w io.Writer, row string) error {
	_, err := io.WriteString(w, row)
	return err
}

func bufferSinkIsFine() string {
	var b strings.Builder
	writeRow(&b, "a,b,c\n") // in-memory sink cannot fail
	return b.String()
}

func fileSinkIsNot(f *os.File) {
	writeRow(f, "a,b,c\n") // want `writeRow`
}

func handledIsFine(path string) error {
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return nil
}

func allowedReadClose(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:allow iocheck read-only descriptor: a Close error cannot lose data that was never written
	defer f.Close()
	return io.ReadAll(f)
}
