package iocheck_test

import (
	"testing"

	"dcpsim/internal/lint/iocheck"
	"dcpsim/internal/lint/linttest"
)

func TestIocheck(t *testing.T) {
	linttest.Run(t, iocheck.Analyzer, "dcpsim/internal/campaign/iofix")
}

// TestIocheckMutations degrades handled IO into dropped IO and asserts
// the analyzer still catches each class.
func TestIocheckMutations(t *testing.T) {
	linttest.RunMutations(t, iocheck.Analyzer, "dcpsim/internal/campaign/iofix", []linttest.Mutation{
		{
			// A handled WriteFile loses its error check.
			File: "iofix.go",
			Old:  "\tif err := os.WriteFile(path, []byte(\"x\"), 0o644); err != nil {\n\t\treturn err\n\t}",
			New:  "\tos.WriteFile(path, []byte(\"x\"), 0o644)",
			Want: `os\.WriteFile`,
		},
		{
			// A handled Close degrades to a bare defer.
			File: "iofix.go",
			Old:  "\tif err := f.Close(); err != nil {\n\t\treturn err\n\t}\n\treturn nil",
			New:  "\tdefer f.Close()\n\treturn nil",
			Want: `\(\*os\.File\)\.Close`,
		},
		{
			// The in-memory sink becomes a fallible file sink.
			File: "iofix.go",
			Old:  "\twriteRow(&b, \"a,b,c\\n\") // in-memory sink cannot fail",
			New:  "\twriteRow(io.MultiWriter(&b), \"a,b,c\\n\")",
			Want: `writeRow`,
		},
	})
}
