// Package unitcheck enforces the typed-units discipline around
// internal/units: simulated time is units.Time (picoseconds) and link
// rates are units.Rate (bits per second). Two classes of bypass are
// flagged everywhere outside internal/units itself:
//
//   - conversions INTO units.Time/units.Rate from a non-constant
//     expression, e.g. units.Time(x). A raw integer has no unit; the bug
//     this catches is "picoseconds? nanoseconds? who knows". Sanctioned
//     forms: constant expressions (units.Time(0)), the constructor idiom
//     units.Time(x)*units.Nanosecond (scaling a raw count by an explicit
//     unit constant), and the units constructors (TxTime, Scale, ...).
//
//   - conversions OUT of units.Time/units.Rate to raw numerics, e.g.
//     float64(t) or int64(r). These discard the unit; use the accessor
//     methods (Seconds/Millis/Micros/Nanos/Picos, Gigabits) or
//     units.Scale/units.ScaleRate for arithmetic.
//
// Byte counts are plain ints by design (units declares only untyped size
// constants), so they are out of scope. Audited exceptions use
// //lint:allow unitcheck <reason>.
package unitcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"dcpsim/internal/lint"
)

// Analyzer is the unitcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "unitcheck",
	Doc:  "flag conversions that bypass the internal/units constructors and accessors",
	Run:  run,
}

const unitsPath = "dcpsim/internal/units"

// unitName returns "Time" or "Rate" if t is one of the units quantity
// types, else "".
func unitName(t types.Type) string {
	if lint.IsNamed(t, unitsPath, "Time") {
		return "Time"
	}
	if lint.IsNamed(t, unitsPath, "Rate") {
		return "Rate"
	}
	return ""
}

func run(pass *lint.Pass) error {
	if pass.Pkg.Path() == unitsPath {
		return nil
	}
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := tv.Type
			arg := call.Args[0]
			argTV := pass.Info.Types[arg]

			if name := unitName(dst); name != "" {
				if argTV.Value != nil {
					return true // constant: units.Time(0) and friends
				}
				if unitName(argTV.Type) == name {
					return true // identity conversion
				}
				if scaledByUnitConst(pass, parents, call, name) {
					return true // units.Time(x) * units.Nanosecond idiom
				}
				pass.Reportf(call.Pos(), "units.%s(...) conversion bypasses the units constructors: a raw number has no unit; multiply by a unit constant (units.%s(n)*units.Nanosecond), or use units.TxTime/units.Scale", name, name)
				return true
			}

			if b, ok := dst.Underlying().(*types.Basic); ok && b.Info()&types.IsNumeric != 0 {
				if argTV.Value != nil {
					return true // constant: float64(units.Millisecond) names its unit
				}
				if name := unitName(argTV.Type); name != "" {
					pass.Reportf(call.Pos(), "raw numeric conversion of a units.%s value discards its unit; use the accessor methods (Seconds/Millis/Micros/Nanos/Picos, Gigabits) or units.Scale/units.ScaleRate", name)
				}
			}
			return true
		})
	}
	return nil
}

// scaledByUnitConst reports whether conv appears as an operand of a
// multiplication whose other operand is a constant of the same units type:
// the sanctioned `units.Time(x) * units.Nanosecond` constructor idiom.
func scaledByUnitConst(pass *lint.Pass, parents map[ast.Node]ast.Node, conv *ast.CallExpr, name string) bool {
	p := parents[conv]
	for {
		pe, ok := p.(*ast.ParenExpr)
		if !ok {
			break
		}
		p = parents[pe]
	}
	bin, ok := p.(*ast.BinaryExpr)
	if !ok || bin.Op != token.MUL {
		return false
	}
	other := bin.X
	if other == conv || containsNode(other, conv) {
		other = bin.Y
	}
	otherTV := pass.Info.Types[other]
	return otherTV.Value != nil && unitName(otherTV.Type) == name
}

func containsNode(root ast.Expr, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// parentMap records each node's parent within the file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := make(map[ast.Node]ast.Node)
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
