package unitcheck_test

import (
	"testing"

	"dcpsim/internal/lint/linttest"
	"dcpsim/internal/lint/unitcheck"
)

func TestUnitcheck(t *testing.T) {
	linttest.Run(t, unitcheck.Analyzer, "dcpsim/internal/exp/unitfix")
}
