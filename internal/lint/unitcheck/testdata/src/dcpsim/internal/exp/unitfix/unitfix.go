// Package unitfix is a unitcheck fixture.
package unitfix

import "dcpsim/internal/units"

// --- conversions INTO units types ---

func rawIn(x int64) units.Time {
	return units.Time(x) // want `conversion bypasses the units constructors`
}

func rawRateIn(f float64) units.Rate {
	return units.Rate(f) // want `conversion bypasses the units constructors`
}

func constIn() units.Time {
	return units.Time(0) // constants are fine
}

func ctorIdiom(n int) units.Time {
	return units.Time(n) * units.Microsecond // sanctioned constructor idiom
}

func viaConstructors(bytes int, r units.Rate, d units.Time) units.Time {
	t := units.TxTime(bytes, r)
	return t + units.Scale(d, 0.5) // constructors keep the unit explicit
}

func allowedRawIn(ps int64) units.Time {
	//lint:allow unitcheck checkpoint decode: field is documented as picoseconds
	return units.Time(ps)
}

// --- conversions OUT of units types ---

func rawOut(t units.Time) float64 {
	return float64(t) // want `discards its unit`
}

func rawRateOut(r units.Rate) int64 {
	return int64(r) // want `discards its unit`
}

func constOut() float64 {
	return float64(units.Millisecond) // constant: the name carries the unit
}

func accessors(t units.Time, r units.Rate) float64 {
	return t.Millis() + r.Gigabits() // accessor methods are the sanctioned exit
}

func allowedRawOut(t units.Time) int64 {
	//lint:allow unitcheck wire format stores raw picoseconds
	return int64(t)
}
