package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
)

// JSONDiagnostic is the machine-readable form of one finding — the
// dcplint -json wire format CI archives and turns into annotations.
// Allowed reports the allow-state: true means a //lint:allow directive
// suppressed the finding and AllowReason carries its audited reason.
type JSONDiagnostic struct {
	File        string `json:"file"`
	Line        int    `json:"line"`
	Col         int    `json:"col"`
	Analyzer    string `json:"analyzer"`
	Message     string `json:"message"`
	Allowed     bool   `json:"allowed"`
	AllowReason string `json:"allow_reason,omitempty"`
}

// JSONReport is the top-level dcplint -json document.
type JSONReport struct {
	// Findings is every diagnostic, suppressed included, in position
	// order. Active counts the unsuppressed ones — the run fails iff
	// Active > 0.
	Findings []JSONDiagnostic `json:"findings"`
	Active   int              `json:"active"`
}

// ToJSON converts diagnostics into the report form, rewriting file paths
// relative to baseDir (slash-separated, for byte-stable output across
// machines). Paths outside baseDir are left absolute.
func ToJSON(diags []Diagnostic, baseDir string) JSONReport {
	rep := JSONReport{Findings: []JSONDiagnostic{}}
	for _, d := range diags {
		if !d.Suppressed {
			rep.Active++
		}
		rep.Findings = append(rep.Findings, JSONDiagnostic{
			File:        relPath(baseDir, d.Pos.Filename),
			Line:        d.Pos.Line,
			Col:         d.Pos.Column,
			Analyzer:    d.Analyzer,
			Message:     d.Message,
			Allowed:     d.Suppressed,
			AllowReason: d.AllowReason,
		})
	}
	return rep
}

// WriteJSON emits the report as indented JSON.
func WriteJSON(w io.Writer, diags []Diagnostic, baseDir string) error {
	blob, err := json.MarshalIndent(ToJSON(diags, baseDir), "", " ")
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", blob)
	return err
}

// WriteGitHubAnnotations emits one ::error workflow command per active
// finding, so a CI failure surfaces file/line-anchored annotations in the
// pull-request diff view.
func WriteGitHubAnnotations(w io.Writer, diags []Diagnostic, baseDir string) error {
	for _, d := range diags {
		if d.Suppressed {
			continue
		}
		_, err := fmt.Fprintf(w, "::error file=%s,line=%d,col=%d,title=dcplint %s::%s\n",
			relPath(baseDir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		if err != nil {
			return err
		}
	}
	return nil
}

func relPath(baseDir, file string) string {
	if baseDir == "" {
		return filepath.ToSlash(file)
	}
	rel, err := filepath.Rel(baseDir, file)
	if err != nil || len(rel) >= 2 && rel[:2] == ".." {
		return filepath.ToSlash(file)
	}
	return filepath.ToSlash(rel)
}
