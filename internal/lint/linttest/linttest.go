// Package linttest is a fixture-based test harness for the lint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under the analyzer's testdata/src/<importpath>/
// directory (the import path shape matters: analyzers scope themselves by
// package path). Expected findings are declared with trailing comments:
//
//	x := time.Now() // want `wall-clock`
//
// where the backquoted text is a regexp that must match a diagnostic on
// that line. Lines carrying a //lint:allow directive assert the opposite:
// the fixture fails the test if a suppressed finding still surfaces.
//
// RunMutations is the self-test layer on top: it seeds one violation at a
// time into a copy of the fixture and asserts the analyzer's finding
// count for that pattern goes up — an analyzer that silently stopped
// detecting (a no-op regression) fails here even if the static fixture
// happens to still pass.
package linttest

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dcpsim/internal/lint"
	"dcpsim/internal/lint/dataflow"
)

// wantRe extracts the pattern from a `// want ...` comment.
var wantRe = regexp.MustCompile("^want [`\"](.*)[`\"]$")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// sharedLoader caches type-checked dependencies across a test binary's
// fixture and mutation loads: the heavy module packages a fixture imports
// are source-imported once, not once per mutation.
var sharedLoader = lint.NewLoader()

// load parses, type-checks and analyzes one fixture directory under the
// given import path, returning the full diagnostic set (suppressed
// included).
func load(t *testing.T, a *lint.Analyzer, dir, pkgPath string) (*lint.Package, []lint.Diagnostic) {
	t.Helper()
	pkg, err := sharedLoader.Load(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	pkgs := []*lint.Package{pkg}
	diags, err := lint.RunWith(dataflow.Build(pkgs), pkgs, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	return pkg, diags
}

// Run loads the fixture package rooted at testdata/src/<pkgPath>, applies
// the analyzer, and compares the active diagnostics against the // want
// expectations in the fixture sources.
func Run(t *testing.T, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	pkg, diags := load(t, a, dir, pkgPath)

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	for _, d := range lint.Active(diags) {
		var hit *expectation
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// Mutation seeds one violation into a copy of a fixture: Old (which must
// occur in File) is replaced with New, and the analyzer must then report
// at least one additional diagnostic matching Want compared to the
// unmutated copy.
type Mutation struct {
	File string // file name within the fixture package
	Old  string // source text to replace (first occurrence)
	New  string // replacement carrying the seeded violation
	Want string // regexp a new diagnostic must match
}

// RunMutations applies each mutation to a scratch copy of the fixture
// under testdata (kept inside the module so imports resolve exactly like
// the fixture's own) and asserts the analyzer catches the seeded
// violation.
func RunMutations(t *testing.T, a *lint.Analyzer, pkgPath string, muts []Mutation) {
	t.Helper()
	srcDir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	for i, m := range muts {
		re, err := regexp.Compile(m.Want)
		if err != nil {
			t.Fatalf("mutation %d: bad want regexp %q: %v", i, m.Want, err)
		}
		scratch, err := os.MkdirTemp("testdata", "mutation-*")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { os.RemoveAll(scratch) })

		entries, err := os.ReadDir(srcDir)
		if err != nil {
			t.Fatal(err)
		}
		mutated := false
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
				continue
			}
			raw, err := os.ReadFile(filepath.Join(srcDir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			src := string(raw)
			if e.Name() == m.File {
				if !strings.Contains(src, m.Old) {
					t.Fatalf("mutation %d: %s does not contain %q", i, m.File, m.Old)
				}
				src = strings.Replace(src, m.Old, m.New, 1)
				mutated = true
			}
			if err := os.WriteFile(filepath.Join(scratch, e.Name()), []byte(src), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if !mutated {
			t.Fatalf("mutation %d: file %s not found in fixture %s", i, m.File, srcDir)
		}

		baseline := countMatching(t, a, srcDir, pkgPath, re)
		seeded := countMatching(t, a, scratch, pkgPath, re)
		if seeded <= baseline {
			t.Errorf("mutation %d (%s: %q -> %q): analyzer did not catch the seeded violation (matches %d -> %d, want an increase)",
				i, m.File, m.Old, m.New, baseline, seeded)
		}
	}
}

func countMatching(t *testing.T, a *lint.Analyzer, dir, pkgPath string, re *regexp.Regexp) int {
	t.Helper()
	_, diags := load(t, a, dir, pkgPath)
	n := 0
	for _, d := range lint.Active(diags) {
		if d.Analyzer == a.Name && re.MatchString(d.Message) {
			n++
		}
	}
	return n
}
