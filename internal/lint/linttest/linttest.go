// Package linttest is a fixture-based test harness for the lint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// Fixture packages live under the analyzer's testdata/src/<importpath>/
// directory (the import path shape matters: analyzers scope themselves by
// package path). Expected findings are declared with trailing comments:
//
//	x := time.Now() // want `wall-clock`
//
// where the backquoted text is a regexp that must match a diagnostic on
// that line. Lines carrying a //lint:allow directive assert the opposite:
// the fixture fails the test if a suppressed finding still surfaces.
package linttest

import (
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"dcpsim/internal/lint"
)

// wantRe extracts the pattern from a `// want ...` comment.
var wantRe = regexp.MustCompile("^want [`\"](.*)[`\"]$")

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at testdata/src/<pkgPath>, applies
// the analyzer, and compares the diagnostics against the // want
// expectations in the fixture sources.
func Run(t *testing.T, a *lint.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", filepath.FromSlash(pkgPath))
	ld := lint.NewLoader()
	pkg, err := ld.Load(dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				m := wantRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	for _, d := range diags {
		var hit *expectation
		for _, w := range wants {
			if w.file == d.Pos.Filename && w.line == d.Pos.Line && w.pattern.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("unexpected diagnostic: %s", d)
			continue
		}
		hit.matched = true
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}
