package sharecheck_test

import (
	"testing"

	"dcpsim/internal/lint/linttest"
	"dcpsim/internal/lint/sharecheck"
)

func TestSharecheck(t *testing.T) {
	linttest.Run(t, sharecheck.Analyzer, "dcpsim/internal/exp/sharefix")
}

// TestSharecheckMutations seeds fresh races into clean fixture code and
// asserts the analyzer still catches each class.
func TestSharecheckMutations(t *testing.T) {
	linttest.RunMutations(t, sharecheck.Analyzer, "dcpsim/internal/exp/sharefix", []linttest.Mutation{
		{
			// A clean pool.Go cell starts leaking a result into the
			// spawning scope.
			File: "sharefix.go",
			Old:  "\treturn pool.Go(p, func() int {\n\t\tn := 0",
			New:  "\tlast := 0\n\treturn pool.Go(p, func() int {\n\t\tlast++\n\t\tn := 0",
			Want: `captured variable last`,
		},
		{
			// Dropping the lock turns the guarded write into a race — this
			// keeps the takesLock exemption load-bearing.
			File: "sharefix.go",
			Old:  "\t\tmu.Lock()\n\t\tdefer mu.Unlock()\n\t\tcount++",
			New:  "\t\t_ = mu\n\t\tcount++",
			Want: `captured variable count`,
		},
	})
}
