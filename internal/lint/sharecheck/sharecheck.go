// Package sharecheck forbids unsynchronized shared mutable state between
// a spawning goroutine and the closures it spawns. A function literal
// handed to a go statement or to the worker pool (pool.Go, pool.GoFree,
// pool.Map) runs concurrently with its spawner, so a write to a variable
// captured from the enclosing scope is a data race unless a sync
// primitive guards it or ownership was handed off.
//
// The rule, over the shared dataflow program's write facts: every write
// inside the spawned literal (nested closures included) whose target is
// declared outside the literal is flagged, unless the literal's body
// takes a sync lock (a Lock/RLock call resolving into package sync) —
// a deliberately coarse approximation: the analyzer checks that *a* lock
// is taken, not that it is the right one, held at the write, or paired
// with the readers' lock. Channel sends and closes are not writes;
// handoff-by-channel therefore passes. Anything subtler carries a
// //lint:allow sharecheck <reason> naming the synchronization story
// (the worker pool's future-completion handoff, for example).
package sharecheck

import (
	"go/ast"
	"go/types"

	"dcpsim/internal/lint"
	"dcpsim/internal/lint/dataflow"
)

// Analyzer is the sharecheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "sharecheck",
	Doc:  "closures spawned via go / pool.Go / pool.GoFree / pool.Map may not write captured state without a sync primitive or channel handoff",
	Run:  run,
}

const poolPath = "dcpsim/internal/exp/pool"

// spawnArgs maps pool entry points to the index of their closure
// argument.
var spawnArgs = map[string]int{"Go": 1, "GoFree": 1, "Map": 2}

func run(pass *lint.Pass) error {
	prog := dataflow.Of(pass)
	if prog == nil {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkSpawn(pass, prog, lit, "go statement")
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				var fn *types.Func
				if ok {
					fn, _ = pass.Info.Uses[sel.Sel].(*types.Func)
				} else if id, isIdent := n.Fun.(*ast.Ident); isIdent {
					fn, _ = pass.Info.Uses[id].(*types.Func)
				}
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != poolPath {
					return true
				}
				idx, ok := spawnArgs[fn.Name()]
				if !ok || idx >= len(n.Args) {
					return true
				}
				if lit, ok := ast.Unparen(n.Args[idx]).(*ast.FuncLit); ok {
					checkSpawn(pass, prog, lit, "pool."+fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkSpawn flags captured writes escaping the spawned literal.
func checkSpawn(pass *lint.Pass, prog *dataflow.Program, lit *ast.FuncLit, via string) {
	root := prog.LitNode(lit)
	if root == nil {
		return
	}
	if takesLock(pass, lit) {
		return
	}
	for _, node := range append([]*dataflow.Node{root}, prog.EnclosedLits(root)...) {
		for _, w := range node.CapturedWrites {
			if w.Obj.Pos() >= root.Pos() && w.Obj.Pos() <= root.End() {
				continue // local to the spawned closure
			}
			pass.Reportf(w.Pos, "goroutine spawned via %s writes captured variable %s without a sync primitive; share by channel handoff or guard both sides with a lock",
				via, w.Obj.Name())
		}
	}
}

// takesLock reports whether the literal's body (nested closures included)
// calls a Lock/RLock that resolves into package sync.
func takesLock(pass *lint.Pass, lit *ast.FuncLit) bool {
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if fn.Pkg().Path() == "sync" && (fn.Name() == "Lock" || fn.Name() == "RLock") {
			found = true
			return false
		}
		return true
	})
	return found
}
