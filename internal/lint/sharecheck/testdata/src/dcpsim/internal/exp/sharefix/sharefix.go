// Package sharefix is a sharecheck fixture: closures spawned via go
// statements or the worker pool may not write captured state without a
// sync primitive or channel handoff. Clean patterns must stay silent.
package sharefix

import (
	"sync"

	"dcpsim/internal/exp/pool"
)

func raceOnCapture(p *pool.Pool) int {
	total := 0
	pool.Map(p, 8, func(i int) int {
		total += i // want `writes captured variable total`
		return i
	})
	return total
}

func goStmtRace() bool {
	done := false
	go func() {
		done = true // want `writes captured variable done`
	}()
	return done
}

func nestedEscape() {
	x := 0
	go func() {
		inner := func() { x++ } // want `writes captured variable x`
		inner()
	}()
}

func futureStyleDropped(p *pool.Pool) {
	var result int
	_ = pool.Go(p, func() int {
		result = 42 // want `writes captured variable result`
		return result
	})
}

func lockedIsFine(mu *sync.Mutex) int {
	count := 0
	go func() {
		mu.Lock()
		defer mu.Unlock()
		count++
	}()
	return count
}

func channelHandoffIsFine(ch chan int) {
	go func() {
		ch <- 1 // sends transfer ownership; no captured write
	}()
}

func spawnedLocalsAreFine(p *pool.Pool) *pool.Future[int] {
	return pool.Go(p, func() int {
		n := 0
		for i := 0; i < 8; i++ {
			n += i
		}
		return n
	})
}

func allowedHandoff() int {
	var result int
	done := make(chan struct{})
	go func() {
		//lint:allow sharecheck write happens-before close(done); the reader blocks on done first
		result = 42
		close(done)
	}()
	<-done
	return result
}
