// Package jsonfix drives the JSON and annotation output golden test:
// one active finding, one allowed finding.
package jsonfix

func boomNow() {}

func active() {
	boomNow()
}

func allowed() {
	//lint:allow boomcheck audited: the golden test needs a suppressed finding
	boomNow()
}
