// Package dataflow is the shared cross-package layer under the dcplint
// analyzers: one Program per run, built from every loaded package, holding
// a module-wide call graph plus per-function write facts. Analyzers that
// reason across package boundaries (purecheck's transitive purity walk,
// sharecheck/ownercheck's goroutine-capture rules) query the Program
// instead of re-walking the tree — one load and one index, N passes.
//
// The graph is deliberately conservative and syntax-driven:
//
//   - a Node is a declared function/method with a body, or a function
//     literal; nested literals are their own nodes;
//   - an edge exists wherever a function's body statically calls another
//     module function, or merely references it (or a literal) as a value —
//     a builder that constructs a closure and hands it somewhere is
//     assumed to cause it to run;
//   - dynamic dispatch (interface methods, calls through function-typed
//     variables) has no edge; the determinism contract's enforcement
//     points are all direct calls, so the approximation errs quiet, and
//     the reference edges recover the common closure-passing shapes.
//
// Write facts cover a body excluding its nested literals (each literal
// carries its own): GlobalWrites are assignments whose root resolves to a
// package-level variable anywhere in the program; CapturedWrites are
// assignments to variables declared outside the function's own span —
// captured outer-scope state when the node is a literal.
package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dcpsim/internal/lint"
)

// Write records one mutation of state that outlives the writing function.
type Write struct {
	Pos token.Pos
	Obj *types.Var
}

// Node is one function in the program: a declared function or method
// (Obj/Decl set) or a function literal (Lit set).
type Node struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *lint.Package

	// Callees holds the static call + reference edges, in syntax order.
	Callees []*Node
	// GlobalWrites are writes to package-level variables in this body
	// (excluding nested literals, which carry their own).
	GlobalWrites []Write
	// CapturedWrites are writes to variables declared outside this
	// function's own source span.
	CapturedWrites []Write
}

// Name renders the node for diagnostics: a declared function's qualified
// name, or "func literal at <pos>".
func (n *Node) Name() string {
	if n.Obj != nil {
		return n.Obj.FullName()
	}
	pos := n.Pkg.Fset.Position(n.Lit.Pos())
	return "func literal at " + pos.String()
}

// Pos is the node's declaration position.
func (n *Node) Pos() token.Pos {
	if n.Decl != nil {
		return n.Decl.Pos()
	}
	return n.Lit.Pos()
}

// End is the node's source end.
func (n *Node) End() token.Pos {
	if n.Decl != nil {
		return n.Decl.End()
	}
	return n.Lit.End()
}

// Body returns the node's statement body.
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Program is the cross-package index shared by all passes of one run.
type Program struct {
	Pkgs []*lint.Package

	funcs map[*types.Func]*Node
	lits  map[*ast.FuncLit]*Node
	nodes []*Node // every node, in package/file/position order

	memo map[string]any
}

// Of recovers the Program a RunWith-driven pass carries, or nil when the
// run was started without one (a Program-needing analyzer then has
// nothing to do and must stay silent).
func Of(pass *lint.Pass) *Program {
	p, _ := pass.Prog.(*Program)
	return p
}

// Build indexes the loaded packages into a Program: every function body
// is walked exactly once, extracting call/reference edges and write
// facts. Analyzer passes share the result read-only.
func Build(pkgs []*lint.Package) *Program {
	p := &Program{
		Pkgs:  pkgs,
		funcs: make(map[*types.Func]*Node),
		lits:  make(map[*ast.FuncLit]*Node),
		memo:  make(map[string]any),
	}
	// Pass 1: create nodes, so edges can point anywhere in the module.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					if n.Body == nil {
						return true
					}
					obj, _ := pkg.Info.Defs[n.Name].(*types.Func)
					if obj == nil {
						return true
					}
					node := &Node{Obj: obj, Decl: n, Pkg: pkg}
					p.funcs[obj] = node
					p.nodes = append(p.nodes, node)
				case *ast.FuncLit:
					node := &Node{Lit: n, Pkg: pkg}
					p.lits[n] = node
					p.nodes = append(p.nodes, node)
				}
				return true
			})
		}
	}
	// Pass 2: per-node facts, nested literals excluded from their parent.
	for _, node := range p.nodes {
		p.index(node)
	}
	return p
}

// FuncNode returns the node for a declared function object (nil when the
// function is outside the loaded packages or has no body).
func (p *Program) FuncNode(obj *types.Func) *Node { return p.funcs[obj] }

// LitNode returns the node for a function literal.
func (p *Program) LitNode(lit *ast.FuncLit) *Node { return p.lits[lit] }

// Nodes returns every node in deterministic (package, position) order.
func (p *Program) Nodes() []*Node { return p.nodes }

// Memo caches an expensive derived fact (reachability sets, root scans)
// across the sequential analyzer passes of one run.
func (p *Program) Memo(key string, build func() any) any {
	if v, ok := p.memo[key]; ok {
		return v
	}
	v := build()
	p.memo[key] = v
	return v
}

// index extracts one node's facts. The walk stops at nested function
// literals: each gets a reference edge and keeps its own facts.
func (p *Program) index(node *Node) {
	info := node.Pkg.Info
	seen := make(map[*Node]bool)
	addEdge := func(to *Node) {
		if to != nil && to != node && !seen[to] {
			seen[to] = true
			node.Callees = append(node.Callees, to)
		}
	}
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if node.Lit != n {
				addEdge(p.lits[n])
				return false
			}
		case *ast.Ident:
			// Call and reference edges alike: any mention of a module
			// function wires it into the graph.
			if fn, ok := info.Uses[n].(*types.Func); ok {
				addEdge(p.funcs[fn])
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				p.recordWrite(node, lhs, info)
			}
		case *ast.IncDecStmt:
			p.recordWrite(node, n.X, info)
		case *ast.RangeStmt:
			if n.Tok == token.ASSIGN {
				p.recordWrite(node, n.Key, info)
				p.recordWrite(node, n.Value, info)
			}
		}
		return true
	}
	ast.Inspect(node.Body(), walk)
}

// recordWrite classifies one assignment target. The root identifier of
// the target expression decides: a package-level variable is a
// GlobalWrite; a variable declared outside the node's span is a
// CapturedWrite. Writes through a dereferenced local pointer (*p = v)
// stay invisible — the analyzer layer documents that gap.
func (p *Program) recordWrite(node *Node, target ast.Expr, info *types.Info) {
	if target == nil {
		return
	}
	id := rootIdent(target)
	if id == nil || id.Name == "_" {
		return
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id] // := defines; a define is not a capture
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	w := Write{Pos: target.Pos(), Obj: v}
	if v.Parent() != nil && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
		node.GlobalWrites = append(node.GlobalWrites, w)
		return
	}
	if info.Defs[id] != nil {
		return // freshly declared here
	}
	if v.Pos() < node.Pos() || v.Pos() > node.End() {
		node.CapturedWrites = append(node.CapturedWrites, w)
	}
}

// rootIdent walks an assignment target to its base identifier: x.F,
// x[i], x.F[i].G all root at x. A *p deref root returns nil (the pointee
// is unknown).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// Reach is a reachability query result: the set of nodes transitively
// reachable from a root set, with parent links for diagnostic chains.
type Reach struct {
	Set map[*Node]bool
	// From maps each reached node to the node it was first discovered
	// through (roots map to nil).
	From map[*Node]*Node
}

// Reachable walks the call graph breadth-first from roots. Traversal
// order is deterministic: roots in given order, edges in syntax order.
func (p *Program) Reachable(roots []*Node) *Reach {
	r := &Reach{Set: make(map[*Node]bool), From: make(map[*Node]*Node)}
	var queue []*Node
	for _, n := range roots {
		if n != nil && !r.Set[n] {
			r.Set[n] = true
			r.From[n] = nil
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, c := range n.Callees {
			if !r.Set[c] {
				r.Set[c] = true
				r.From[c] = n
				queue = append(queue, c)
			}
		}
	}
	return r
}

// Chain renders the discovery path root → ... → n for diagnostics, most
// distant ancestor first.
func (r *Reach) Chain(n *Node) []*Node {
	var chain []*Node
	for at := n; at != nil; at = r.From[at] {
		chain = append(chain, at)
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return chain
}

// NodesIn returns the program's nodes belonging to the given type-checked
// package, in position order — the per-pass reporting filter that keeps
// every diagnostic (and so every //lint:allow) inside the pass's own
// package.
func (p *Program) NodesIn(pkg *types.Package) []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if n.Pkg.Types == pkg {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}

// EnclosedLits returns the literals in the program lexically contained in
// node's span (node's own nested closures, at any depth).
func (p *Program) EnclosedLits(node *Node) []*Node {
	var out []*Node
	for _, n := range p.nodes {
		if n.Lit != nil && n != node && n.Pkg == node.Pkg &&
			n.Pos() >= node.Pos() && n.End() <= node.End() {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos() < out[j].Pos() })
	return out
}
