// Package dfix is the dataflow-layer fixture: a tiny call graph with a
// global write two hops from the root, a closure chain, and a captured
// write in the innermost literal.
package dfix

var counter int

func Root() {
	helper()
	fn := func() {
		counter++
		x := 0
		inner := func() { x++ }
		inner()
	}
	fn()
}

func helper() { counter = 1 }

func untouched() {
	local := 0
	local++
}
