package dataflow_test

import (
	"path/filepath"
	"testing"

	"go/types"

	"dcpsim/internal/lint"
	"dcpsim/internal/lint/dataflow"
)

func buildFixture(t *testing.T) (*lint.Package, *dataflow.Program) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "dcpsim", "internal", "dfix")
	pkg, err := lint.NewLoader().Load(dir, "dcpsim/internal/dfix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	return pkg, dataflow.Build([]*lint.Package{pkg})
}

func declNode(t *testing.T, pkg *lint.Package, prog *dataflow.Program, name string) *dataflow.Node {
	t.Helper()
	obj, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("no function %s in fixture", name)
	}
	n := prog.FuncNode(obj)
	if n == nil {
		t.Fatalf("no node for %s", name)
	}
	return n
}

func litNodes(prog *dataflow.Program) []*dataflow.Node {
	var out []*dataflow.Node
	for _, n := range prog.Nodes() {
		if n.Lit != nil {
			out = append(out, n)
		}
	}
	return out
}

func TestBuildGraph(t *testing.T) {
	pkg, prog := buildFixture(t)
	root := declNode(t, pkg, prog, "Root")
	helper := declNode(t, pkg, prog, "helper")

	lits := litNodes(prog)
	if len(lits) != 2 {
		t.Fatalf("expected 2 literal nodes, got %d", len(lits))
	}
	outer, inner := lits[0], lits[1]

	hasCallee := func(n, want *dataflow.Node) bool {
		for _, c := range n.Callees {
			if c == want {
				return true
			}
		}
		return false
	}
	if !hasCallee(root, helper) {
		t.Error("Root should have a call edge to helper")
	}
	if !hasCallee(root, outer) {
		t.Error("Root should have a reference edge to its closure")
	}
	if !hasCallee(outer, inner) {
		t.Error("outer closure should have a reference edge to inner")
	}

	if len(helper.GlobalWrites) != 1 || helper.GlobalWrites[0].Obj.Name() != "counter" {
		t.Errorf("helper global writes = %v, want one write to counter", helper.GlobalWrites)
	}
	if len(outer.GlobalWrites) != 1 || outer.GlobalWrites[0].Obj.Name() != "counter" {
		t.Errorf("outer closure global writes = %v, want one write to counter", outer.GlobalWrites)
	}
	if len(inner.CapturedWrites) != 1 || inner.CapturedWrites[0].Obj.Name() != "x" {
		t.Errorf("inner closure captured writes = %v, want one write to x", inner.CapturedWrites)
	}

	// untouched's local writes are neither global nor captured.
	un := declNode(t, pkg, prog, "untouched")
	if len(un.GlobalWrites)+len(un.CapturedWrites) != 0 {
		t.Errorf("untouched should have no escaping writes, got %v / %v", un.GlobalWrites, un.CapturedWrites)
	}
}

func TestReachabilityAndChains(t *testing.T) {
	pkg, prog := buildFixture(t)
	root := declNode(t, pkg, prog, "Root")
	helper := declNode(t, pkg, prog, "helper")
	un := declNode(t, pkg, prog, "untouched")
	lits := litNodes(prog)
	outer, inner := lits[0], lits[1]

	r := prog.Reachable([]*dataflow.Node{root})
	for _, want := range []*dataflow.Node{root, helper, outer, inner} {
		if !r.Set[want] {
			t.Errorf("%s should be reachable from Root", want.Name())
		}
	}
	if r.Set[un] {
		t.Error("untouched must not be reachable from Root")
	}

	chain := r.Chain(inner)
	if len(chain) != 3 || chain[0] != root || chain[1] != outer || chain[2] != inner {
		names := make([]string, len(chain))
		for i, n := range chain {
			names[i] = n.Name()
		}
		t.Errorf("chain to inner = %v, want Root -> outer literal -> inner literal", names)
	}
}

func TestEnclosedLits(t *testing.T) {
	_, prog := buildFixture(t)
	lits := litNodes(prog)
	outer, inner := lits[0], lits[1]

	enc := prog.EnclosedLits(outer)
	if len(enc) != 1 || enc[0] != inner {
		t.Errorf("EnclosedLits(outer) = %v, want just the inner literal", enc)
	}
	if got := prog.EnclosedLits(inner); len(got) != 0 {
		t.Errorf("EnclosedLits(inner) = %v, want none", got)
	}
}
