package lint_test

import (
	"bytes"
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"dcpsim/internal/lint"
)

// boomcheck is a minimal analyzer for exercising the output formats: it
// flags every call to a function whose name starts with "boom".
var boomcheck = &lint.Analyzer{
	Name: "boomcheck",
	Doc:  "test analyzer: flags boom* calls",
	Run: func(pass *lint.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := call.Fun.(*ast.Ident); ok && len(id.Name) >= 4 && id.Name[:4] == "boom" {
					pass.Reportf(call.Pos(), "call to %s escapes containment", id.Name)
				}
				return true
			})
		}
		return nil
	},
}

func loadJSONFixture(t *testing.T) []lint.Diagnostic {
	t.Helper()
	dir := filepath.Join("testdata", "src", "dcpsim", "internal", "jsonfix")
	pkg, err := lint.NewLoader().Load(dir, "dcpsim/internal/jsonfix")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{boomcheck})
	if err != nil {
		t.Fatalf("running boomcheck: %v", err)
	}
	return diags
}

// TestWriteJSONGolden pins the dcplint -json wire format: findings in
// position order, allow-state and audited reason included, active count
// covering only unsuppressed findings.
func TestWriteJSONGolden(t *testing.T) {
	diags := loadJSONFixture(t)
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, diags, "testdata"); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "jsonfix.golden")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("JSON output drifted from %s.\ngot:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
}

// TestWriteGitHubAnnotations pins the workflow-command format and that
// suppressed findings produce no annotation.
func TestWriteGitHubAnnotations(t *testing.T) {
	diags := loadJSONFixture(t)
	var buf bytes.Buffer
	if err := lint.WriteGitHubAnnotations(&buf, diags, "testdata"); err != nil {
		t.Fatal(err)
	}
	want := "::error file=src/dcpsim/internal/jsonfix/jsonfix.go,line=8,col=2,title=dcplint boomcheck::call to boomNow escapes containment\n"
	if buf.String() != want {
		t.Errorf("annotations drifted.\ngot:\n%q\nwant:\n%q", buf.String(), want)
	}
}

// TestActiveCount double-checks the suppression split the formats rely on.
func TestActiveCount(t *testing.T) {
	diags := loadJSONFixture(t)
	if len(diags) != 2 {
		t.Fatalf("expected 2 findings (1 active, 1 allowed), got %d: %v", len(diags), diags)
	}
	active := lint.Active(diags)
	if len(active) != 1 {
		t.Fatalf("expected 1 active finding, got %d", len(active))
	}
	if !diags[1].Suppressed || diags[1].AllowReason == "" {
		t.Errorf("second finding should be suppressed with a reason, got %+v", diags[1])
	}
}
