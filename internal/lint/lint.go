// Package lint is a small, dependency-free static-analysis framework plus
// the glue shared by the dcpsim analyzers (detcheck, unitcheck, seqcheck,
// aliascheck — see their packages) and the cmd/dcplint driver.
//
// The Analyzer/Pass shape deliberately mirrors
// golang.org/x/tools/go/analysis so the checkers could be ported to the
// real framework wholesale; this module stays stdlib-only, so the loading
// and running machinery is reimplemented here on go/parser + go/types with
// the source importer (which resolves both the standard library and this
// module's packages from source, with no network or export data).
//
// Suppression: any diagnostic can be waived with an audited escape hatch
//
//	//lint:allow <analyzer> <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory; a directive without one is itself reported, and so
// is a directive that suppresses nothing (stale suppressions fail the run
// instead of rotting silently).
//
// Cross-package analyzers (purecheck, ownercheck and friends) consume a
// shared dataflow program — a module-wide call graph with write facts,
// built once per run by internal/lint/dataflow and handed to every pass
// through RunWith — so the tree is loaded and indexed once no matter how
// many analyzers run over it.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Run applies the check to one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Prog is the shared cross-package dataflow program (a
	// *dataflow.Program) when the run was started through RunWith; nil
	// otherwise. It is typed any here to keep this package free of the
	// dataflow dependency; analyzers recover it via dataflow.Of.
	Prog any

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with the position resolved. Suppressed
// findings are retained (marked, with the directive's reason) so that
// machine-readable output can report the allow-state of every site.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// Suppressed marks a finding waived by a //lint:allow directive.
	Suppressed bool
	// AllowReason is the directive's audited reason when Suppressed.
	AllowReason string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// AllowPrefix is the comment directive introducing an audited exception.
const AllowPrefix = "//lint:allow "

// allowKey identifies one suppression site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// directive is one parsed //lint:allow comment.
type directive struct {
	analyzer string
	reason   string
	pos      token.Position
	used     bool
}

// collectDirectives scans a package's comments for //lint:allow
// directives. Malformed directives (no analyzer name, or no reason) are
// returned as diagnostics in their own right.
func collectDirectives(pkg *Package) (map[allowKey]*directive, []Diagnostic) {
	allows := make(map[allowKey]*directive)
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				const bare = "//lint:allow"
				if c.Text != bare && !strings.HasPrefix(c.Text, AllowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(c.Text, bare))
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  "malformed lint:allow directive: want //lint:allow <analyzer> <reason>",
					})
					continue
				}
				allows[allowKey{pos.Filename, pos.Line, fields[0]}] = &directive{
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
					pos:      pos,
				}
			}
		}
	}
	return allows, bad
}

// Run applies every analyzer to every package. See RunWith.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunWith(nil, pkgs, analyzers)
}

// RunWith applies every analyzer to every package, matches findings
// against the //lint:allow directives, and returns every diagnostic —
// suppressed ones marked with their directive's reason — ordered by
// position. prog, when non-nil, is the shared cross-package dataflow
// program (built once by the caller, typically dataflow.Build) exposed to
// each pass as Pass.Prog.
//
// A directive that suppresses nothing is itself a diagnostic: stale
// allows must be deleted, not accumulated. Directives naming analyzers
// outside this run's set are left alone (a single-analyzer fixture run
// must not condemn another analyzer's allows).
func RunWith(prog any, pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	inRun := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		inRun[a.Name] = true
	}
	var out []Diagnostic
	for _, pkg := range pkgs {
		allows, bad := collectDirectives(pkg)
		out = append(out, bad...)
		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Prog:     prog,
				diags:    &raw,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range raw {
			dir := allows[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}]
			if dir == nil {
				dir = allows[allowKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
			}
			if dir != nil {
				dir.used = true
				d.Suppressed = true
				d.AllowReason = dir.reason
			}
			out = append(out, d)
		}
		for _, dir := range allows {
			if !dir.used && inRun[dir.analyzer] {
				out = append(out, Diagnostic{
					Analyzer: "lint",
					Pos:      dir.pos,
					Message:  fmt.Sprintf("unused //lint:allow %s directive: it suppresses nothing on this or the next line; delete it", dir.analyzer),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// Active filters diags down to the findings that survived the allow
// directives — the set that fails a run.
func Active(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if !d.Suppressed {
			out = append(out, d)
		}
	}
	return out
}

// IsNamed reports whether t is the named type pkgPath.name (ignoring any
// pointer indirection is the caller's job).
func IsNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IsPtrToNamed reports whether t is *pkgPath.name.
func IsPtrToNamed(t types.Type, pkgPath, name string) bool {
	p, ok := t.(*types.Pointer)
	return ok && IsNamed(p.Elem(), pkgPath, name)
}

// WalkStmtLists invokes fn on every statement list in root: block bodies,
// switch/select clause bodies — including those inside function literals.
func WalkStmtLists(root ast.Node, fn func(list []ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}
