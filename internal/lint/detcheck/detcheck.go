// Package detcheck forbids nondeterminism sources in simulation code.
//
// The whole repository rests on bit-for-bit seed determinism: a given seed
// must produce the same run on every machine, every time. The checks:
//
//   - wall-clock time (time.Now, time.Since, ...): simulated time comes from
//     sim.Engine.Now.
//   - the global math/rand source (rand.Intn, rand.Float64, ...): all
//     stochastic choices must come from a seeded *rand.Rand (usually
//     sim.Engine.Rand); rand.New(rand.NewSource(seed)) is the sanctioned
//     construction.
//   - go statements and select: the engine is single-threaded by design;
//     goroutine interleaving is scheduler-dependent.
//   - iteration over maps whose body is order-sensitive: Go randomizes map
//     iteration order per run. Commutative reductions (counting, summing)
//     and constant early-exits are allowed; anything that calls functions,
//     appends to an outer slice without sorting it afterwards, or
//     overwrites outer state is flagged. The sanctioned pattern is
//     collect-keys-sort-then-range.
//
// Audited exceptions use //lint:allow detcheck <reason>.
package detcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dcpsim/internal/lint"
)

// Analyzer is the detcheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "detcheck",
	Doc:  "forbid nondeterminism sources (wall clock, global rand, goroutines, select, order-sensitive map iteration) in simulation code",
	Run:  run,
}

// forbiddenTime are time-package functions that read the host clock or
// host timers.
var forbiddenTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

// forbiddenRand are math/rand (and /v2) top-level functions drawing from
// the global source. Constructors (New, NewSource, NewPCG, ...) are fine.
var forbiddenRand = map[string]bool{
	"Int": true, "Intn": true, "IntN": true, "Int31": true, "Int31n": true,
	"Int32": true, "Int32N": true, "Int63": true, "Int63n": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32": true, "Uint32N": true, "Uint64": true, "Uint64N": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true,
}

// inScope reports whether detcheck applies to the package. Everything in
// the module is simulation code or drives it; only the linter itself is
// exempt.
func inScope(path string) bool {
	if path == "dcpsim/internal/lint" || strings.HasPrefix(path, "dcpsim/internal/lint/") {
		return false
	}
	return path == "dcpsim" || strings.HasPrefix(path, "dcpsim/")
}

func run(pass *lint.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "go statement in simulation code: goroutine interleaving is scheduler-dependent; run everything on the single-threaded sim.Engine")
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in simulation code: channel readiness order is nondeterministic; use engine events instead")
			case *ast.CallExpr:
				checkCall(pass, n)
			}
			return true
		})
		lint.WalkStmtLists(f, func(list []ast.Stmt) {
			for i, s := range list {
				if rng, ok := s.(*ast.RangeStmt); ok {
					checkMapRange(pass, rng, list[i+1:])
				}
			}
		})
	}
	return nil
}

// checkCall flags calls to wall-clock time functions and to the global
// math/rand source.
func checkCall(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	// Package-level functions only: methods (e.g. (*rand.Rand).Intn,
	// (time.Time).Sub) have a receiver and are fine.
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if forbiddenTime[fn.Name()] {
			pass.Reportf(call.Pos(), "wall-clock time.%s in simulation code; use the engine's simulated clock (sim.Engine.Now / sim.Timer)", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		if forbiddenRand[fn.Name()] {
			pass.Reportf(call.Pos(), "rand.%s draws from the global math/rand source; draw from a seeded *rand.Rand (sim.Engine.Rand, or rand.New(rand.NewSource(seed)))", fn.Name())
		}
	}
}

// checkMapRange flags a range over a map whose body is order-sensitive.
// rest is the statement list following the range in its enclosing block,
// consulted for the sanctioned collect-then-sort pattern.
func checkMapRange(pass *lint.Pass, rng *ast.RangeStmt, rest []ast.Stmt) {
	t := pass.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	c := &classifier{pass: pass, locals: make(map[types.Object]bool)}
	c.declare(rng.Key)
	c.declare(rng.Value)
	c.stmts(rng.Body.List)
	if c.badWhy == "" && len(c.collects) > 0 && !sortedAfter(pass, c.collects, rest) {
		c.badWhy = "appends to a slice that is not sorted afterwards"
	}
	if c.badWhy != "" {
		// Report at the range statement so a //lint:allow above the loop
		// covers the whole body.
		pass.Reportf(rng.Pos(), "map iteration order is randomized and this body %s; collect keys and sort first, or //lint:allow detcheck <reason> if provably order-insensitive", c.badWhy)
	}
}

// classifier walks a map-range body deciding whether it is order-sensitive.
type classifier struct {
	pass     *lint.Pass
	locals   map[types.Object]bool
	collects []types.Object // outer slices accumulated via x = append(x, ...)
	badWhy   string
}

// bad records the first order-sensitivity reason; the diagnostic itself is
// anchored at the range statement by checkMapRange.
func (c *classifier) bad(why string) {
	if c.badWhy == "" {
		c.badWhy = why
	}
}

func (c *classifier) declare(e ast.Expr) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return
	}
	if obj := c.pass.Info.Defs[id]; obj != nil {
		c.locals[obj] = true
	}
}

// isLocal reports whether the expression is rooted at an object declared
// inside the loop body.
func (c *classifier) isLocal(e ast.Expr) bool {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			obj := c.pass.Info.Uses[x]
			if obj == nil {
				obj = c.pass.Info.Defs[x]
			}
			return obj != nil && c.locals[obj]
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

func (c *classifier) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

// commutative assignment operators: reductions whose result does not
// depend on iteration order (sum, product, bitwise accumulate).
var commutative = map[token.Token]bool{
	token.ADD_ASSIGN: true, token.MUL_ASSIGN: true,
	token.OR_ASSIGN: true, token.AND_ASSIGN: true, token.XOR_ASSIGN: true,
}

func (c *classifier) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.expr(rhs)
		}
		for i, lhs := range s.Lhs {
			switch {
			case s.Tok == token.DEFINE:
				c.declare(lhs)
			case c.isLocal(lhs):
				c.exprIgnoringTarget(lhs)
			case commutative[s.Tok]:
				// x += v etc. on outer state: a commutative reduction.
				c.exprIgnoringTarget(lhs)
			case s.Tok == token.ASSIGN && i < len(s.Rhs) && c.isCollectAppend(lhs, s.Rhs[i]):
				// x = append(x, ...): order-sensitive unless sorted after
				// the loop; recorded and judged by the caller.
			default:
				c.bad("writes to state outside the loop (last-writer-wins depends on iteration order)")
			}
		}
	case *ast.IncDecStmt:
		// x++ / x-- is a commutative count, even on outer state.
		c.exprIgnoringTarget(s.X)
	case *ast.ExprStmt:
		c.expr(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		c.expr(s.Cond)
		c.stmts(s.Body.List)
		if s.Else != nil {
			c.stmt(s.Else)
		}
	case *ast.BlockStmt:
		c.stmts(s.List)
	case *ast.ForStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Cond != nil {
			c.expr(s.Cond)
		}
		if s.Post != nil {
			c.stmt(s.Post)
		}
		c.stmts(s.Body.List)
	case *ast.RangeStmt:
		c.declareRangeVars(s)
		c.expr(s.X)
		c.stmts(s.Body.List)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init)
		}
		if s.Tag != nil {
			c.expr(s.Tag)
		}
		for _, cc := range s.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				for _, e := range clause.List {
					c.expr(e)
				}
				c.stmts(clause.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmts(s.Body.List)
	case *ast.CaseClause:
		for _, e := range s.List {
			c.expr(e)
		}
		c.stmts(s.Body)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			if tv, ok := c.pass.Info.Types[e]; !ok || tv.Value == nil {
				c.bad("returns a value that depends on which element comes first")
				return
			}
		}
	case *ast.BranchStmt:
		// break/continue/goto: fine.
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, n := range vs.Names {
						c.declare(n)
					}
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.SendStmt:
		c.bad("sends on a channel")
	case *ast.DeferStmt:
		c.bad("defers a call")
	case *ast.GoStmt:
		// Reported by the go-statement check; also order-sensitive here.
		c.bad("starts a goroutine")
	case *ast.LabeledStmt:
		c.stmt(s.Stmt)
	case *ast.EmptyStmt:
	default:
		c.bad("contains a statement the linter cannot prove order-insensitive")
	}
}

func (c *classifier) declareRangeVars(s *ast.RangeStmt) {
	if s.Tok == token.DEFINE {
		c.declare(s.Key)
		c.declare(s.Value)
	}
}

// isCollectAppend recognizes `x = append(x, ...)` with x an identifier,
// recording x as a collect target.
func (c *classifier) isCollectAppend(lhs ast.Expr, rhs ast.Expr) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	fid, ok := call.Fun.(*ast.Ident)
	if !ok || fid.Name != "append" {
		return false
	}
	if _, ok := c.pass.Info.Uses[fid].(*types.Builtin); !ok {
		return false
	}
	if len(call.Args) == 0 {
		return false
	}
	first, ok := call.Args[0].(*ast.Ident)
	if !ok || first.Name != id.Name {
		return false
	}
	obj := c.pass.Info.Uses[id]
	if obj == nil {
		return false
	}
	for _, a := range call.Args[1:] {
		c.expr(a)
	}
	c.collects = append(c.collects, obj)
	return true
}

// expr scans an expression for calls (anything that might mutate state or
// schedule events is order-sensitive).
func (c *classifier) expr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Type conversions are pure.
		if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := c.pass.Info.Uses[id].(*types.Builtin); ok {
				switch b.Name() {
				case "len", "cap", "delete", "min", "max", "append":
					return true
				}
			}
		}
		c.bad("calls a function (calls may mutate sim state or schedule events)")
		return false
	})
}

// exprIgnoringTarget scans the non-root parts of an assignment target
// (index expressions etc.) for calls.
func (c *classifier) exprIgnoringTarget(e ast.Expr) {
	switch x := e.(type) {
	case *ast.IndexExpr:
		c.expr(x.Index)
		c.exprIgnoringTarget(x.X)
	case *ast.SelectorExpr:
		c.exprIgnoringTarget(x.X)
	case *ast.StarExpr:
		c.exprIgnoringTarget(x.X)
	case *ast.ParenExpr:
		c.exprIgnoringTarget(x.X)
	case *ast.Ident:
	default:
		c.expr(e)
	}
}

// sortedAfter reports whether every collect target is passed to a sort
// function in the statements following the range.
func sortedAfter(pass *lint.Pass, targets []types.Object, rest []ast.Stmt) bool {
	sorted := make(map[types.Object]bool)
	for _, s := range rest {
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			pkg := fn.Pkg().Path()
			if pkg != "sort" && pkg != "slices" {
				return true
			}
			for _, a := range call.Args {
				ast.Inspect(a, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							sorted[obj] = true
						}
					}
					return true
				})
			}
			return true
		})
	}
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
