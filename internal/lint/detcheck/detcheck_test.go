package detcheck_test

import (
	"testing"

	"dcpsim/internal/lint/detcheck"
	"dcpsim/internal/lint/linttest"
)

func TestDetcheck(t *testing.T) {
	linttest.Run(t, detcheck.Analyzer, "dcpsim/internal/sim/detfix")
}
