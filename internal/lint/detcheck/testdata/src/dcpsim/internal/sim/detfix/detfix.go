// Package detfix is a detcheck fixture: each violating line carries a
// want expectation; the clean patterns below it must stay silent.
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

// --- wall clock ---

func wallClock() int64 {
	return time.Now().UnixNano() // want `wall-clock time\.Now`
}

func wallElapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock time\.Since`
}

//lint:allow detcheck progress banner is wall-clock by design
func allowedWallClock() time.Time { return time.Now() }

// --- global math/rand ---

func globalRand() int {
	return rand.Intn(6) // want `global math/rand source`
}

func seededRand(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // constructors are sanctioned
	return rng.Intn(6)                    // methods on a seeded *rand.Rand are fine
}

func allowedGlobalRand() float64 {
	//lint:allow detcheck jitter for a log message, not sim state
	return rand.Float64()
}

// --- goroutines and select ---

func spawn(fn func()) {
	go fn() // want `go statement`
}

func wait(ch chan int) int {
	select { // want `select in simulation code`
	case v := <-ch:
		return v
	}
}

// --- map iteration ---

type event struct{ at int64 }

func schedule(m map[int]*event, run func(*event)) {
	for _, e := range m { // want `map iteration order`
		run(e)
	}
}

func collectUnsorted(m map[int]string) []string {
	var out []string
	for _, v := range m { // want `map iteration order`
		out = append(out, v)
	}
	return out
}

func collectSorted(m map[int]string) []string {
	var keys []int
	for k := range m { // sanctioned: collect, sort, then use
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func overwrite(m map[int]int) int {
	last := -1
	for _, v := range m { // want `map iteration order`
		last = v
	}
	return last
}

func sum(m map[int]int) (n int) {
	for _, v := range m { // commutative reduction: order-insensitive
		n += v
	}
	return n
}

func count(m map[int]bool) int {
	n := 0
	for _, ok := range m { // commutative count
		if ok {
			n++
		}
	}
	return n
}

func anyMissing(m map[int]*event) bool {
	for _, e := range m { // constant early-exit: order-insensitive
		if e == nil {
			return true
		}
	}
	return false
}

func allowedMapRange(m map[int]int, sink func(int)) {
	//lint:allow detcheck sink is an order-insensitive accumulator
	for _, v := range m {
		sink(v)
	}
}
