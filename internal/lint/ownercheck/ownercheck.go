// Package ownercheck statically approximates sim.Engine's runtime
// ownership guard: an Engine (and the simulation hanging off it) belongs
// to the goroutine that constructed it for its entire lifetime. The
// engine's Run enforces this dynamically with an atomic re-entrancy flag;
// ownercheck catches the escape at compile time, before the race ever
// executes — the companion to aliascheck's packet-ownership rule, one
// layer up.
//
// Flagged: a *sim.Engine (or sim.Engine) value declared outside a spawned
// closure — a go statement's literal, or a closure handed to pool.Go /
// pool.GoFree / pool.Map — that is referenced inside it; and an engine
// passed as an argument in a go statement's call. An engine constructed
// inside the closure is owned by it and free to use. Future
// intra-engine sharding that legitimately hands an engine across a
// barrier documents it with //lint:allow ownercheck <reason>.
package ownercheck

import (
	"go/ast"
	"go/types"

	"dcpsim/internal/lint"
)

// Analyzer is the ownercheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "ownercheck",
	Doc:  "a sim.Engine may only be touched from the goroutine that constructed it; spawned closures may not capture one",
	Run:  run,
}

const simPath = "dcpsim/internal/sim"

// spawnArgs maps pool entry points to the index of their closure
// argument.
var spawnArgs = map[string]int{"Go": 1, "GoFree": 1, "Map": 2}

const poolPath = "dcpsim/internal/exp/pool"

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkCaptures(pass, lit, "go statement")
				}
				for _, a := range n.Call.Args {
					if isEngine(pass.Info.Types[a].Type) {
						pass.Reportf(a.Pos(), "passes a sim.Engine into a spawned goroutine; the engine is owned by the goroutine that constructed it")
					}
				}
			case *ast.CallExpr:
				fn := callee(pass, n)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != poolPath {
					return true
				}
				idx, ok := spawnArgs[fn.Name()]
				if !ok || idx >= len(n.Args) {
					return true
				}
				if lit, ok := ast.Unparen(n.Args[idx]).(*ast.FuncLit); ok {
					checkCaptures(pass, lit, "pool."+fn.Name())
				}
			}
			return true
		})
	}
	return nil
}

// checkCaptures flags engine-typed identifiers declared outside the
// spawned literal but used within it. Struct fields are skipped: a field
// selector roots at its base variable, and an engine hanging off a value
// constructed inside the closure (s.Eng on a cell-built sim) is
// closure-owned.
func checkCaptures(pass *lint.Pass, lit *ast.FuncLit, via string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || !isEngine(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() <= lit.End() {
			return true // constructed or received inside: the closure owns it
		}
		pass.Reportf(id.Pos(), "closure spawned via %s captures engine %s constructed on the spawning goroutine; a sim.Engine is single-owner for its lifetime",
			via, obj.Name())
		return true
	})
}

func isEngine(t types.Type) bool {
	return t != nil && (lint.IsNamed(t, simPath, "Engine") || lint.IsPtrToNamed(t, simPath, "Engine"))
}

func callee(pass *lint.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
