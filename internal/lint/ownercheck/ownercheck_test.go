package ownercheck_test

import (
	"testing"

	"dcpsim/internal/lint/linttest"
	"dcpsim/internal/lint/ownercheck"
)

func TestOwnercheck(t *testing.T) {
	linttest.Run(t, ownercheck.Analyzer, "dcpsim/internal/sim/ownfix")
}

// TestOwnercheckMutations turns owned engines into escaped ones and
// asserts the analyzer still catches each class.
func TestOwnercheckMutations(t *testing.T) {
	linttest.RunMutations(t, ownercheck.Analyzer, "dcpsim/internal/sim/ownfix", []linttest.Mutation{
		{
			// A cell that constructs its own engine starts borrowing the
			// spawner's instead.
			File: "ownfix.go",
			Old:  "\treturn pool.Map(p, 4, func(i int) int {\n\t\teng := sim.NewEngine(int64(i)) // the cell constructs, owns, and drops it",
			New:  "\touter := sim.NewEngine(9)\n\treturn pool.Map(p, 4, func(i int) int {\n\t\teng := outer\n\t\t_ = int64(i)",
			Want: `captures engine outer`,
		},
		{
			// A same-goroutine engine escapes into a fresh go statement.
			File: "ownfix.go",
			Old:  "\teng.Stop() // same-goroutine use: fine",
			New:  "\tgo drive(eng)",
			Want: `passes a sim\.Engine`,
		},
	})
}
