// Package ownfix is an ownercheck fixture: a sim.Engine belongs to the
// goroutine that constructed it; spawned closures may not capture one
// and go statements may not smuggle one across as an argument.
package ownfix

import (
	"dcpsim/internal/exp/pool"
	"dcpsim/internal/sim"
)

func capturedEngine() {
	eng := sim.NewEngine(1)
	go func() {
		eng.Stop() // want `captures engine eng`
	}()
}

func engineAsGoArg() {
	eng := sim.NewEngine(2)
	go drive(eng) // want `passes a sim\.Engine`
}

func drive(e *sim.Engine) { e.Stop() }

func capturedIntoPool(p *pool.Pool) *pool.Future[int] {
	eng := sim.NewEngine(3)
	return pool.Go(p, func() int {
		return eng.Pending() // want `captures engine eng`
	})
}

func ownedInsideCell(p *pool.Pool) []int {
	return pool.Map(p, 4, func(i int) int {
		eng := sim.NewEngine(int64(i)) // the cell constructs, owns, and drops it
		eng.Stop()
		return eng.Pending()
	})
}

type harness struct {
	Eng *sim.Engine
}

func fieldOfOwnedSim(p *pool.Pool) []int {
	return pool.Map(p, 2, func(i int) int {
		h := harness{Eng: sim.NewEngine(int64(i))}
		return h.Eng.Pending() // field selector on a cell-built value: owned
	})
}

func ownedOnSpawner() int {
	eng := sim.NewEngine(5)
	eng.Stop() // same-goroutine use: fine
	return eng.Pending()
}

func allowedHandoff() {
	eng := sim.NewEngine(6)
	done := make(chan struct{})
	go func() {
		//lint:allow ownercheck construction handoff: the spawner never touches eng again and blocks on done
		eng.Stop()
		close(done)
	}()
	<-done
}
