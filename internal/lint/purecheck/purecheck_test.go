package purecheck_test

import (
	"testing"

	"dcpsim/internal/lint/linttest"
	"dcpsim/internal/lint/purecheck"
)

func TestPurecheck(t *testing.T) {
	linttest.Run(t, purecheck.Analyzer, "dcpsim/internal/exp/purefix")
}

// TestPurecheckMutations seeds fresh violations into clean fixture code
// and asserts the analyzer still catches each class — a no-op analyzer
// fails here.
func TestPurecheckMutations(t *testing.T) {
	linttest.RunMutations(t, purecheck.Analyzer, "dcpsim/internal/exp/purefix", []linttest.Mutation{
		{
			// A clean Run root starts writing a global through a helper.
			File: "purefix.go",
			Old:  "func bump(n *int) { *n++ }",
			New:  "func bump(n *int) { *n++; hits = *n }",
			Want: `package-level variable hits`,
		},
		{
			// A clean pool.Map cell starts leaking into the spawning scope.
			File: "purefix.go",
			Old:  "\tparts := pool.Map(p, 4, func(i int) int {\n\t\tacc := 0",
			New:  "\tleak := 0\n\tparts := pool.Map(p, 4, func(i int) int {\n\t\tleak++\n\t\tacc := 0",
			Want: `captured variable leak`,
		},
	})
}
