// Package purecheck enforces the PR-5 purity contract on experiment
// cell-builders: a function registered as a cell-builder — an
// exp.Experiment's Run, or the cell closure handed to exp's sweep/grid,
// exp.Cell, or pool.Map — and everything it transitively calls, may not
// write package-level variables; and a closure spawned onto a pool worker
// (sweep/grid/pool.Map) may not write state captured from its enclosing
// scope. Cells execute concurrently, so either write is a cross-cell (or
// cross-goroutine) leak that breaks the byte-identical parallel-merge
// guarantee. exp.Cell closures run inline on the calling goroutine and
// are exempt from the captured rule (but not the global one): campaign
// units accumulate into caller locals through them by design.
//
// The walk runs over the shared dataflow program: roots are collected
// once per run across every loaded package, the call graph (direct calls
// plus closure references) is closed transitively, and each pass reports
// only the violating write sites inside its own package — so a
// //lint:allow purecheck <reason> lives next to the write it audits.
// Dynamic dispatch is not followed; writes through dereferenced pointer
// locals are invisible (the aliasing is untrackable without SSA).
package purecheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"dcpsim/internal/lint"
	"dcpsim/internal/lint/dataflow"
)

// Analyzer is the purecheck analyzer.
var Analyzer = &lint.Analyzer{
	Name: "purecheck",
	Doc:  "cell-builders (exp.Experiment Run funcs, sweep/Cell/pool.Map closures) and their transitive callees may not write package-level or captured state",
	Run:  run,
}

const (
	expPath  = "dcpsim/internal/exp"
	poolPath = "dcpsim/internal/exp/pool"
)

// builderArgs maps (package, function) to the index of its cell-builder
// argument and whether that builder is spawned onto a pool worker.
// exp.Cell runs its closure inline on the caller's goroutine — captured
// writes there stay same-goroutine, so only the global-purity rule
// applies; sweep/grid/pool.Map hand the closure to workers, which adds
// the no-captured-writes rule.
var builderArgs = map[[2]string]struct {
	idx     int
	spawned bool
}{
	{expPath, "sweep"}: {2, true},
	{expPath, "grid"}:  {3, true},
	{expPath, "Cell"}:  {2, false},
	{poolPath, "Map"}:  {2, true},
}

// facts is the run-wide purity state, computed once and memoized on the
// Program.
type facts struct {
	// reach covers everything transitively reachable from any root.
	reach *dataflow.Reach
	// cellRoots are the cell closures/functions subject to the stricter
	// no-captured-writes rule (Experiment Run roots are reach-only: they
	// execute on their own coordinator goroutine and capture nothing).
	cellRoots []*dataflow.Node
}

func run(pass *lint.Pass) error {
	prog := dataflow.Of(pass)
	if prog == nil {
		return nil
	}
	f := prog.Memo("purecheck.facts", func() any { return compute(prog) }).(*facts)

	for _, node := range prog.NodesIn(pass.Pkg) {
		if !f.reach.Set[node] {
			continue
		}
		for _, w := range node.GlobalWrites {
			pass.Reportf(w.Pos, "impure cell-builder code: writes package-level variable %s (%s); cells run concurrently and must own all state they mutate",
				w.Obj.Name(), chain(f.reach, node))
		}
	}
	for _, root := range f.cellRoots {
		if root.Pkg.Types != pass.Pkg {
			continue
		}
		for _, node := range append([]*dataflow.Node{root}, prog.EnclosedLits(root)...) {
			for _, w := range node.CapturedWrites {
				if w.Obj.Pos() >= root.Pos() && w.Obj.Pos() <= root.End() {
					continue // cell-local state captured by an inner helper
				}
				pass.Reportf(w.Pos, "cell-builder closure writes captured variable %s declared outside the cell; cells run on pool workers and may not mutate the spawning scope",
					w.Obj.Name())
			}
		}
	}
	return nil
}

// compute scans every package for builder registration sites and closes
// the call graph over them.
func compute(prog *dataflow.Program) *facts {
	var roots, cellRoots []*dataflow.Node
	addRoot := func(e ast.Expr, pkg *lint.Package, cell bool) {
		n := nodeFor(prog, pkg, e)
		if n == nil {
			return
		}
		roots = append(roots, n)
		if cell {
			cellRoots = append(cellRoots, n)
		}
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CompositeLit:
					if tv, ok := pkg.Info.Types[n]; ok && lint.IsNamed(tv.Type, expPath, "Experiment") {
						if e := runField(pkg, n); e != nil {
							addRoot(e, pkg, false)
						}
					}
				case *ast.CallExpr:
					fn := staticCallee(pkg, n)
					if fn == nil || fn.Pkg() == nil {
						return true
					}
					if ba, ok := builderArgs[[2]string{fn.Pkg().Path(), fn.Name()}]; ok && ba.idx < len(n.Args) {
						addRoot(n.Args[ba.idx], pkg, ba.spawned)
					}
				}
				return true
			})
		}
	}
	return &facts{reach: prog.Reachable(roots), cellRoots: cellRoots}
}

// runField extracts the Run field value from an exp.Experiment composite
// literal, keyed or positional.
func runField(pkg *lint.Package, lit *ast.CompositeLit) ast.Expr {
	st, ok := pkg.Info.Types[lit].Type.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "Run" {
				return kv.Value
			}
			continue
		}
		if i < st.NumFields() && st.Field(i).Name() == "Run" {
			return el
		}
	}
	return nil
}

// nodeFor resolves a function-valued expression to its program node:
// a literal, or an identifier/selector naming a module function.
func nodeFor(prog *dataflow.Program, pkg *lint.Package, e ast.Expr) *dataflow.Node {
	switch e := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return prog.LitNode(e)
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[e].(*types.Func); ok {
			return prog.FuncNode(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[e.Sel].(*types.Func); ok {
			return prog.FuncNode(fn)
		}
	}
	return nil
}

// staticCallee resolves a call's target when it is a direct function
// reference.
func staticCallee(pkg *lint.Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pkg.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pkg.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// chain renders the reachability path to a node for the diagnostic.
func chain(r *dataflow.Reach, n *dataflow.Node) string {
	nodes := r.Chain(n)
	parts := make([]string, len(nodes))
	for i, c := range nodes {
		parts[i] = shortName(c)
	}
	if len(parts) == 1 {
		return "in cell-builder " + parts[0]
	}
	return fmt.Sprintf("reachable from cell-builder %s", strings.Join(parts, " → "))
}

func shortName(n *dataflow.Node) string {
	if n.Obj != nil {
		return n.Obj.Name()
	}
	pos := n.Pkg.Fset.Position(n.Pos())
	return fmt.Sprintf("closure@%d", pos.Line)
}
