// Package purefix is a purecheck fixture: cell-builders (exp.Experiment
// Run functions, closures handed to exp.Cell / pool.Map) and their
// transitive callees must not write package-level variables or captured
// outer-scope state. Clean patterns below each violation must stay
// silent.
package purefix

import (
	"dcpsim/internal/exp"
	"dcpsim/internal/exp/pool"
	"dcpsim/internal/stats"
)

var hits int
var rows []string

// Registration mirrors internal/exp/registry.go: positional and keyed
// composite literals both register Run roots.
var experiments = []exp.Experiment{
	{"dirty", "writes a global two calls deep", false, dirtyRun},
	{ID: "clean", Desc: "pure sweep", Run: cleanRun},
}

func dirtyRun(exp.Config) []*stats.Table {
	countGlobally()
	return nil
}

// countGlobally is reached transitively from the dirtyRun root.
func countGlobally() {
	hits++ // want `package-level variable hits`
}

func cleanRun(exp.Config) []*stats.Table {
	local := 0
	bump(&local) // writes through a pointer parameter are untracked by design
	return nil
}

func bump(n *int) { *n++ }

func dirtyCell(cfg exp.Config) {
	exp.Cell(cfg, 0, func(exp.Config) {
		rows = append(rows, "x") // want `package-level variable rows`
	})
}

func dirtyMapCell(p *pool.Pool) int {
	total := 0
	_ = pool.Map(p, 4, func(i int) int {
		total += i // want `captured variable total`
		return i
	})
	return total
}

func cleanMapCell(p *pool.Pool) int {
	parts := pool.Map(p, 4, func(i int) int {
		acc := 0 // cell-local accumulation merges by submission order
		for j := 0; j <= i; j++ {
			acc += j
		}
		return acc
	})
	sum := 0
	for _, p := range parts {
		sum += p
	}
	return sum
}

func inlineCellAccumulator(cfg exp.Config) int {
	sum := 0
	exp.Cell(cfg, 2, func(exp.Config) {
		sum++ // exp.Cell runs its closure inline: caller-local accumulation is fine
	})
	return sum
}

func nestedCellHelper(cfg exp.Config) {
	exp.Cell(cfg, 1, func(exp.Config) {
		cellLocal := 0
		inner := func() { cellLocal++ } // writes cell-local state: fine
		inner()
	})
}

var seededOnce bool

func allowedImpurity(exp.Config) []*stats.Table {
	//lint:allow purecheck one-shot warm-up flag, set before any cell is submitted
	seededOnce = true
	return nil
}

var allowedExperiments = []exp.Experiment{
	{ID: "allowed", Desc: "audited impurity", Run: allowedImpurity},
}
